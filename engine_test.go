package blowfish

import (
	"errors"
	"math"
	"sync"
	"testing"

	"github.com/privacylab/blowfish/internal/core"
	"github.com/privacylab/blowfish/internal/strategy"
)

// TestPlanMatchesLegacyAnswer checks the two entry points are bitwise
// interchangeable on every strategy branch: a Plan prepared once must
// reproduce exactly what the per-call Answer produces from the same Source
// state.
func TestPlanMatchesLegacyAnswer(t *testing.T) {
	wsrc := NewSource(41)
	cases := []struct {
		name string
		p    *Policy
		w    *Workload
		opts Options
	}{
		{"tree", LinePolicy(24), AllRanges1D(24), Options{}},
		{"tree/dawa", LinePolicy(24), Histogram(24), Options{Estimator: EstimatorDAWA}},
		{"grid", GridPolicy(5), RandomRangesKd([]int{5, 5}, 60, wsrc.Split()), Options{}},
	}
	if p, err := DistanceThresholdPolicy([]int{30}, 3); err == nil {
		cases = append(cases, struct {
			name string
			p    *Policy
			w    *Workload
			opts Options
		}{"theta-line", p, AllRanges1D(30), Options{}})
	}
	if p, err := DistanceThresholdPolicy([]int{7, 7}, 3); err == nil {
		cases = append(cases, struct {
			name string
			p    *Policy
			w    *Workload
			opts Options
		}{"theta-grid", p, RandomRangesKd([]int{7, 7}, 60, wsrc.Split()), Options{}})
	}
	for _, tc := range cases {
		x := make([]float64, tc.p.K)
		for i := range x {
			x[i] = float64((i*5)%11 + 1)
		}
		eng, err := Open(tc.p, EngineOptions{})
		if err != nil {
			t.Fatalf("%s: open: %v", tc.name, err)
		}
		plan, err := eng.Prepare(tc.w, tc.opts)
		if err != nil {
			t.Fatalf("%s: prepare: %v", tc.name, err)
		}
		for trial := 0; trial < 3; trial++ {
			seed := int64(100*trial + 7)
			want, err := Answer(tc.w, x, tc.p, 0.8, NewSource(seed), tc.opts)
			if err != nil {
				t.Fatalf("%s: legacy: %v", tc.name, err)
			}
			got, err := plan.Answer(x, 0.8, NewSource(seed))
			if err != nil {
				t.Fatalf("%s: plan: %v", tc.name, err)
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%s trial %d: query %d plan=%v legacy=%v (not bitwise identical)",
						tc.name, trial, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPlanAnswerZeroRecompilation asserts the hot path never recompiles:
// the strategy and transform compile counters must stay flat across many
// Answer calls on one Plan, while the legacy path bumps them per call.
func TestPlanAnswerZeroRecompilation(t *testing.T) {
	p := LinePolicy(64)
	w := AllRanges1D(64)
	x := make([]float64, 64)
	eng, err := Open(p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := eng.Prepare(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := NewSource(9)
	c0, t0 := strategy.Compilations(), core.TransformBuilds()
	for i := 0; i < 50; i++ {
		if _, err := plan.Answer(x, 0.5, src.Split()); err != nil {
			t.Fatal(err)
		}
	}
	if c, tr := strategy.Compilations(), core.TransformBuilds(); c != c0 || tr != t0 {
		t.Fatalf("plan.Answer recompiled: strategy %d->%d, transforms %d->%d", c0, c, t0, tr)
	}
	// Sanity: the legacy path does recompile per call.
	if _, err := Answer(w, x, p, 0.5, src.Split(), Options{}); err != nil {
		t.Fatal(err)
	}
	if c := strategy.Compilations(); c == c0 {
		t.Fatal("legacy Answer did not bump the compile counter")
	}
}

// TestPlanConcurrentAnswer exercises one shared Plan from several
// goroutines with separate Sources; run under -race this is the
// concurrent-serving regression test.
func TestPlanConcurrentAnswer(t *testing.T) {
	p := LinePolicy(128)
	w := AllRanges1D(128)
	x := make([]float64, 128)
	for i := range x {
		x[i] = float64(i % 9)
	}
	eng, err := Open(p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := eng.Prepare(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 4
	const perG = 20
	seeds := NewSource(17)
	srcs := seeds.SplitN(goroutines)
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := plan.Answer(x, 1.0, srcs[g].Split()); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if n := eng.Accountant().Releases(); n != goroutines*perG {
		t.Fatalf("accountant saw %d releases, want %d", n, goroutines*perG)
	}
}

// TestPlanAnswerBatch checks batch releases match sequential ones and fan
// out correctly.
func TestPlanAnswerBatch(t *testing.T) {
	p := LinePolicy(32)
	w := Histogram(32)
	eng, err := Open(p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := eng.Prepare(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	xs := make([][]float64, 6)
	for i := range xs {
		xs[i] = make([]float64, 32)
		xs[i][i] = float64(10 * (i + 1))
	}
	batch, err := plan.AnswerBatch(xs, 0.5, NewSource(23))
	if err != nil {
		t.Fatal(err)
	}
	// Same results as sequential Answer calls each given src.Split().
	src := NewSource(23)
	for i, x := range xs {
		want, err := plan.Answer(x, 0.5, src.Split())
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if math.Float64bits(batch[i][j]) != math.Float64bits(want[j]) {
				t.Fatalf("batch %d query %d: %v != sequential %v", i, j, batch[i][j], want[j])
			}
		}
	}
	if n := eng.Accountant().Releases(); n != int64(2*len(xs)) {
		t.Fatalf("releases %d, want %d", n, 2*len(xs))
	}
}

// TestAccountantBudget covers the (ε, δ) budget enforcement paths.
func TestAccountantBudget(t *testing.T) {
	p := LinePolicy(16)
	w := Histogram(16)
	x := make([]float64, 16)
	eng, err := Open(p, EngineOptions{Budget: Budget{Epsilon: 1.0}})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := eng.Prepare(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := NewSource(31)
	// Ten ε=0.1 releases fit exactly.
	for i := 0; i < 10; i++ {
		if _, err := plan.Answer(x, 0.1, src.Split()); err != nil {
			t.Fatalf("release %d within budget rejected: %v", i, err)
		}
	}
	// The eleventh must fail with the typed error.
	if _, err := plan.Answer(x, 0.1, src.Split()); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("over-budget release: got %v, want ErrBudgetExhausted", err)
	}
	if rem, ok := eng.Accountant().Remaining(); !ok || rem.Epsilon > 1e-9 {
		t.Fatalf("remaining = %+v, %v; want ~0, true", rem, ok)
	}
	// eps <= 0 (no noise) is rejected outright under a finite budget.
	eng2, err := Open(p, EngineOptions{Budget: Budget{Epsilon: 5}})
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := eng2.Prepare(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan2.Answer(x, 0, NewSource(1)); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("eps=0 under finite budget: got %v, want ErrBudgetExhausted", err)
	}
	// Batches charge atomically: a 3×0.4 batch exceeds what a 2×0.4 spend
	// left of ε=2 only when it would overrun — here 5×0.4 = 2.0 fits, a
	// sixth release does not.
	eng3, err := Open(p, EngineOptions{Budget: Budget{Epsilon: 2, Delta: 1e-5}})
	if err != nil {
		t.Fatal(err)
	}
	plan3, err := eng3.Prepare(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	xs := [][]float64{x, x, x, x, x}
	if _, err := plan3.AnswerBatch(xs, 0.4, NewSource(2)); err != nil {
		t.Fatalf("batch within budget rejected: %v", err)
	}
	if _, err := plan3.Answer(x, 0.4, NewSource(3)); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("post-batch release: got %v, want ErrBudgetExhausted", err)
	}
	spent := eng3.Accountant().Spent()
	if math.Abs(spent.Epsilon-2.0) > 1e-9 {
		t.Fatalf("spent ε=%g, want 2.0", spent.Epsilon)
	}
}

// TestGaussianDeltaAccounting checks δ spend is tracked for the Appendix A
// Gaussian estimator.
func TestGaussianDeltaAccounting(t *testing.T) {
	p := LinePolicy(16)
	w := Histogram(16)
	x := make([]float64, 16)
	eng, err := Open(p, EngineOptions{Budget: Budget{Epsilon: 10, Delta: 2e-6}})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := eng.Prepare(w, Options{Estimator: EstimatorGaussian, Delta: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	src := NewSource(5)
	for i := 0; i < 2; i++ {
		if _, err := plan.Answer(x, 0.5, src.Split()); err != nil {
			t.Fatalf("release %d: %v", i, err)
		}
	}
	// δ budget exhausted before ε.
	if _, err := plan.Answer(x, 0.5, src.Split()); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("delta over-budget: got %v, want ErrBudgetExhausted", err)
	}
}

// TestOptionsValidation covers the single validation point shared by
// Answer, SelectAlgorithm and Prepare.
func TestOptionsValidation(t *testing.T) {
	p := LinePolicy(8)
	w := Histogram(8)
	x := make([]float64, 8)
	bad := []Options{
		{Theta: -1},
		{Delta: -0.5},
		{Estimator: EstimatorGaussian}, // Delta <= 0
	}
	for i, opts := range bad {
		if _, err := Answer(w, x, p, 1, NewSource(1), opts); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("Answer bad opts %d: got %v, want ErrInvalidOptions", i, err)
		}
		if _, err := SelectAlgorithm(w, p, opts); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("SelectAlgorithm bad opts %d: got %v, want ErrInvalidOptions", i, err)
		}
		eng, err := Open(p, EngineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Prepare(w, opts); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("Prepare bad opts %d: got %v, want ErrInvalidOptions", i, err)
		}
	}
	if _, err := Open(p, EngineOptions{Budget: Budget{Epsilon: -1}}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("negative budget: got %v, want ErrInvalidOptions", err)
	}
	// NaN budgets would silently disable enforcement (NaN fails every
	// comparison) and must be rejected up front, as must NaN Delta.
	if _, err := Open(p, EngineOptions{Budget: Budget{Epsilon: math.NaN()}}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("NaN budget: got %v, want ErrInvalidOptions", err)
	}
	if _, err := Answer(w, x, p, 1, NewSource(1), Options{Estimator: EstimatorGaussian, Delta: math.NaN()}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("NaN delta: got %v, want ErrInvalidOptions", err)
	}
	// Open(nil, ...) returns the typed error rather than panicking.
	if _, err := Open(nil, EngineOptions{}); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("nil policy: got %v, want ErrInvalidOptions", err)
	}
}

// TestAccountantRejectsNonFiniteCharge guards against NaN/Inf eps poisoning
// the running spend totals and disabling the budget forever.
func TestAccountantRejectsNonFiniteCharge(t *testing.T) {
	p := LinePolicy(8)
	w := Histogram(8)
	x := make([]float64, 8)
	eng, err := Open(p, EngineOptions{Budget: Budget{Epsilon: 1}})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := eng.Prepare(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{math.NaN(), math.Inf(1)} {
		if _, err := plan.Answer(x, eps, NewSource(1)); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("eps=%v: got %v, want ErrInvalidOptions", eps, err)
		}
	}
	// The rejected charges must not have corrupted the accountant: a normal
	// release still succeeds and spend stays finite.
	if _, err := plan.Answer(x, 0.5, NewSource(2)); err != nil {
		t.Fatalf("release after rejected charges: %v", err)
	}
	if s := eng.Accountant().Spent(); math.IsNaN(s.Epsilon) || s.Epsilon != 0.5 {
		t.Fatalf("spent ε=%v, want 0.5", s.Epsilon)
	}
}

// TestDeltaBudgetNoAbsoluteSlack checks the budget tolerance is relative:
// tiny δ budgets (the realistic range) cannot be overspent by a fixed
// absolute slack.
func TestDeltaBudgetNoAbsoluteSlack(t *testing.T) {
	p := LinePolicy(8)
	w := Histogram(8)
	x := make([]float64, 8)
	eng, err := Open(p, EngineOptions{Budget: Budget{Epsilon: 10, Delta: 1e-10}})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := eng.Prepare(w, Options{Estimator: EstimatorGaussian, Delta: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	// One release would spend 10× the δ budget; it must be rejected.
	if _, err := plan.Answer(x, 0.5, NewSource(1)); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("10x delta overspend: got %v, want ErrBudgetExhausted", err)
	}
}

// TestTypedErrors covers the remaining sentinels.
func TestTypedErrors(t *testing.T) {
	// Disconnected policy.
	p, err := SensitiveAttributePolicy([]int{2, 2}, []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Open(p, EngineOptions{})
	if err != nil {
		t.Fatalf("open disconnected (lazy branches): %v", err)
	}
	if _, err := eng.Prepare(Histogram(4), Options{}); !errors.Is(err, ErrDisconnectedPolicy) {
		t.Fatalf("disconnected prepare: got %v, want ErrDisconnectedPolicy", err)
	}
	if _, err := Answer(Histogram(4), make([]float64, 4), p, 1, NewSource(1), Options{}); !errors.Is(err, ErrDisconnectedPolicy) {
		t.Fatalf("disconnected legacy Answer: got %v, want ErrDisconnectedPolicy", err)
	}
	// Domain mismatches.
	line := LinePolicy(8)
	if _, err := Answer(Histogram(8), make([]float64, 9), line, 1, NewSource(1), Options{}); !errors.Is(err, ErrDomainMismatch) {
		t.Fatalf("db size mismatch: got %v, want ErrDomainMismatch", err)
	}
	eng2, err := Open(line, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Prepare(Histogram(9), Options{}); !errors.Is(err, ErrDomainMismatch) {
		t.Fatalf("workload mismatch: got %v, want ErrDomainMismatch", err)
	}
	plan, err := eng2.Prepare(Histogram(8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Answer(make([]float64, 9), 1, NewSource(1)); !errors.Is(err, ErrDomainMismatch) {
		t.Fatalf("plan db mismatch: got %v, want ErrDomainMismatch", err)
	}
	if _, err := plan.AnswerBatch([][]float64{make([]float64, 9)}, 1, NewSource(1)); !errors.Is(err, ErrDomainMismatch) {
		t.Fatalf("batch db mismatch: got %v, want ErrDomainMismatch", err)
	}
}

// TestEngineArtifactCaching checks Prepare reuses the Engine's compiled
// transform: preparing many plans for one policy builds the transform once.
func TestEngineArtifactCaching(t *testing.T) {
	p := LinePolicy(64)
	eng, err := Open(p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t0 := core.TransformBuilds()
	for i := 0; i < 8; i++ {
		if _, err := eng.Prepare(Histogram(64), Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if tr := core.TransformBuilds(); tr != t0 {
		t.Fatalf("Prepare rebuilt transforms: %d -> %d", t0, tr)
	}
	// Theta override compiles a separate artifact, cached after first use.
	pt, err := DistanceThresholdPolicy([]int{40}, 2)
	if err != nil {
		t.Fatal(err)
	}
	engT, err := Open(pt, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engT.Prepare(AllRanges1D(40), Options{Theta: 4}); err != nil {
		t.Fatal(err)
	}
	t1 := core.TransformBuilds()
	if _, err := engT.Prepare(AllRanges1D(40), Options{Theta: 4}); err != nil {
		t.Fatal(err)
	}
	if tr := core.TransformBuilds(); tr != t1 {
		t.Fatalf("theta-override artifact not cached: %d -> %d", t1, tr)
	}
}

// TestPlanAlgorithmNames checks the plan reports the same strategy names
// SelectAlgorithm always had.
func TestPlanAlgorithmNames(t *testing.T) {
	eng, err := Open(LinePolicy(8), EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := eng.Prepare(Histogram(8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm() != "blowfish(tree)" {
		t.Fatalf("plan algorithm %q", plan.Algorithm())
	}
	if plan.Queries() != 8 {
		t.Fatalf("plan queries %d", plan.Queries())
	}
	src := NewSource(3)
	engG, err := Open(GridPolicy(4), EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	planG, err := engG.Prepare(RandomRangesKd([]int{4, 4}, 10, src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if planG.Algorithm() != "Transformed + Privelet" {
		t.Fatalf("grid plan algorithm %q", planG.Algorithm())
	}
}
