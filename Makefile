# Mirrors .github/workflows/ci.yml: `make lint build test bench` is exactly
# what CI runs.

GO ?= go
BENCH_JSON ?= BENCH_eval.json

.PHONY: all build test bench lint clean

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Benchmarks: a 1-iteration smoke pass over every Benchmark* (so they cannot
# bit-rot), then the experiment driver writing the machine-readable report
# used for the perf trajectory.
bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...
	$(GO) run ./cmd/blowfishbench -exp table1,fig3,fig10a,fig10b,fig10spectral,planreuse -json $(BENCH_JSON)
	$(GO) run ./cmd/blowfishbench -exp serve -full -json BENCH_serve.json

lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...

clean:
	rm -f BENCH_*.json
