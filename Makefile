# Mirrors .github/workflows/ci.yml: `make lint build test bench` is exactly
# what CI runs.

GO ?= go
BENCH_JSON ?= BENCH_eval.json

.PHONY: all build test bench fuzz gate lint docs crash chaos clean

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Benchmarks: a 1-iteration smoke pass over every Benchmark* (so they cannot
# bit-rot), then the experiment driver writing the machine-readable report
# used for the perf trajectory.
bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...
	$(GO) run ./cmd/blowfishbench -exp table1,fig3,fig10a,fig10b,fig10spectral,planreuse -json $(BENCH_JSON)
	$(GO) run ./cmd/blowfishbench -exp serve -full -json BENCH_serve.json
	$(GO) run ./cmd/blowfishbench -exp stream -full -json BENCH_stream.json
	$(GO) run ./cmd/blowfishbench -exp shard -full -json BENCH_shard.json

# Wire-format fuzzers for the daemon's JSON surface plus the durable
# snapshot/WAL decoders (typed errors, never a panic, on arbitrary bytes).
# CI runs a short smoke; crank FUZZTIME locally to dig.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/serve -run '^$$' -fuzz 'FuzzAnswerWire' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/serve -run '^$$' -fuzz 'FuzzUpdateWire' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/serve -run '^$$' -fuzz 'FuzzWALReplayRecord' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/persist -run '^$$' -fuzz 'FuzzSnapshotLoad' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/persist -run '^$$' -fuzz 'FuzzWALReplay' -fuzztime $(FUZZTIME)

# Kill -9 / restart smoke against a real daemon process (driven through
# blowfishctl, the retrying client): ledgers, stream state, and recorded
# idempotent responses must survive a hard kill (WAL replay) and a SIGTERM
# (final snapshot).
crash:
	./scripts/crash_smoke.sh

# Chaos suite under the race detector: the retrying client against a faulty
# daemon (dropped requests, lost responses, latency, kill -9 mid-request)
# must land on exactly the fault-free ledger and stream state.
chaos:
	$(GO) test -race -run 'TestChaos' ./internal/serve
	$(GO) test -race ./client

# Regression gate: regenerate the benchmark reports at the same scale as the
# checked-in baselines, then compare the machine-portable ratio columns.
GATE_TOLERANCE ?= 0.5
gate:
	$(GO) run ./cmd/blowfishbench -exp sparse -json BENCH_sparse.fresh.json
	$(GO) run ./cmd/blowfishbench -exp fig10spectral -json BENCH_fig10spectral.fresh.json
	$(GO) run ./cmd/blowfishbench -exp stream -full -json BENCH_stream.fresh.json
	$(GO) run ./cmd/blowfishbench -exp shard -full -json BENCH_shard.fresh.json
	$(GO) run ./cmd/benchgate -baseline BENCH_sparse.json -current BENCH_sparse.fresh.json -tolerance $(GATE_TOLERANCE)
	$(GO) run ./cmd/benchgate -baseline BENCH_fig10spectral.json -current BENCH_fig10spectral.fresh.json -tolerance $(GATE_TOLERANCE)
	$(GO) run ./cmd/benchgate -baseline BENCH_stream.json -current BENCH_stream.fresh.json -tolerance $(GATE_TOLERANCE)
	$(GO) run ./cmd/benchgate -baseline BENCH_shard.json -current BENCH_shard.fresh.json -tolerance $(GATE_TOLERANCE)

lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...

# Documentation hygiene: format + vet, then fail if any internal package is
# missing a package comment (the godoc landing text for that package).
docs: lint
	@missing="$$($(GO) list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./internal/...)"; \
	if [ -n "$$missing" ]; then \
		echo "packages missing a package comment:" >&2; echo "$$missing" >&2; exit 1; fi
	@echo "docs: all internal packages documented"

clean:
	rm -f BENCH_*.fresh.json BENCH_smoke.json BENCH_eval.json
