package blowfish

import (
	"encoding/json"
	"errors"
	"math"
	"testing"
)

// TestAccountantStateRoundTrip pins the bitwise ledger round-trip through
// JSON that the daemon's snapshot format relies on: export, serialize,
// restore into a fresh accountant, and the spend, budget and release count
// are exactly the originals.
func TestAccountantStateRoundTrip(t *testing.T) {
	a, err := NewAccountant(Budget{Epsilon: 1.0, Delta: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	// Accumulate float drift on purpose: 0.1 + 0.07 + ... is not exactly
	// representable, which is exactly what must survive the round-trip.
	for _, eps := range []float64{0.1, 0.07, 0.33, 0.011} {
		if err := a.Charge(Budget{Epsilon: eps, Delta: 1e-8}, 1); err != nil {
			t.Fatalf("charge %g: %v", eps, err)
		}
	}
	st := a.ExportState()
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back AccountantState
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	b := newAccountant(Budget{})
	if err := b.RestoreState(back); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if b.Spent() != a.Spent() || b.Budget() != a.Budget() || b.Releases() != a.Releases() {
		t.Fatalf("round-trip drifted: %+v vs %+v", b.ExportState(), a.ExportState())
	}

	// The restored ledger enforces exactly where the original would.
	errA := a.Charge(Budget{Epsilon: 0.6, Delta: 0}, 1)
	errB := b.Charge(Budget{Epsilon: 0.6, Delta: 0}, 1)
	if !errors.Is(errA, ErrBudgetExhausted) || !errors.Is(errB, ErrBudgetExhausted) {
		t.Fatalf("enforcement drifted: %v vs %v", errA, errB)
	}
}

func TestRestoreStateRejectsInvalid(t *testing.T) {
	a := newAccountant(Budget{})
	bad := []AccountantState{
		{Spent: Budget{Epsilon: -1}},
		{Spent: Budget{Epsilon: math.NaN()}},
		{Releases: -3},
		{Budget: Budget{Epsilon: math.Inf(1)}},
	}
	for i, st := range bad {
		if err := a.RestoreState(st); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("case %d: want ErrInvalidOptions, got %v", i, err)
		}
	}
}

// TestChargeLoggedCommitOrdering pins the write-ahead protocol: the commit
// callback sees the absolute post-charge state before the grant is
// observable, a failing commit leaves the ledger untouched, and a rejected
// charge never reaches the log.
func TestChargeLoggedCommitOrdering(t *testing.T) {
	a, err := NewAccountant(Budget{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	var logged []AccountantState
	commit := func(st AccountantState) error {
		logged = append(logged, st)
		return nil
	}
	if err := a.ChargeLogged(Budget{Epsilon: 0.25}, 2, commit); err != nil {
		t.Fatalf("charge: %v", err)
	}
	if len(logged) != 1 || logged[0].Spent.Epsilon != 0.5 || logged[0].Releases != 2 {
		t.Fatalf("logged %+v", logged)
	}
	if a.Spent().Epsilon != 0.5 {
		t.Fatalf("spent %g, want 0.5", a.Spent().Epsilon)
	}

	// A failing commit must not grant.
	sentinel := errors.New("disk gone")
	err = a.ChargeLogged(Budget{Epsilon: 0.25}, 1, func(AccountantState) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("want commit error, got %v", err)
	}
	if a.Spent().Epsilon != 0.5 || a.Releases() != 2 {
		t.Fatalf("failed commit mutated the ledger: %+v", a.ExportState())
	}

	// A rejected charge must not reach the log.
	before := len(logged)
	if err := a.ChargeLogged(Budget{Epsilon: 0.9}, 1, commit); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	if len(logged) != before {
		t.Fatal("rejected charge was logged")
	}

	// ChargeLogged and Charge price identically (shared admission math).
	b, _ := NewAccountant(Budget{Epsilon: 1})
	b.Charge(Budget{Epsilon: 0.25}, 2)
	if b.ExportState().Spent != a.ExportState().Spent {
		t.Fatalf("ChargeLogged %+v != Charge %+v", a.ExportState().Spent, b.ExportState().Spent)
	}
}

// TestStreamStateRoundTrip is the tentpole restore property on every
// strategy branch: apply deltas through the incremental path (accumulating
// patch drift the dense rebuild would erase), export, serialize, restore,
// and the recovered stream answers bitwise identically to the original —
// noiseless and noised, from the same Source state.
func TestStreamStateRoundTrip(t *testing.T) {
	for _, tc := range streamCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := Open(tc.p, EngineOptions{})
			if err != nil {
				t.Fatal(err)
			}
			pl, err := eng.Prepare(tc.w, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			x := make([]float64, tc.p.K)
			for i := range x {
				x[i] = float64((i*5)%11 + 1)
			}
			st, err := eng.OpenStream(pl, x, StreamOptions{})
			if err != nil {
				t.Fatal(err)
			}
			dsrc := NewSource(31)
			for batch := 0; batch < 10; batch++ {
				cells := []int{dsrc.Intn(tc.p.K), dsrc.Intn(tc.p.K)}
				vals := []float64{0.1 * float64(dsrc.Intn(9)-4), float64(dsrc.Intn(5))}
				if err := st.Apply(Delta{Cells: cells, Values: vals}); err != nil {
					t.Fatal(err)
				}
			}

			raw, err := json.Marshal(st.ExportState())
			if err != nil {
				t.Fatal(err)
			}
			var snap StreamState
			if err := json.Unmarshal(raw, &snap); err != nil {
				t.Fatal(err)
			}
			rec, err := eng.RestoreStream(pl, &snap)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}

			db, rdb := st.Database(), rec.Database()
			for i := range db {
				if db[i] != rdb[i] {
					t.Fatalf("database[%d] drifted: %v vs %v", i, db[i], rdb[i])
				}
			}
			for _, eps := range []float64{0, 0.8} {
				want, err := st.AnswerWith(t.Context(), nil, eps, NewSource(7))
				if err != nil {
					t.Fatal(err)
				}
				got, err := rec.AnswerWith(t.Context(), nil, eps, NewSource(7))
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("eps=%g answer[%d] drifted: %v vs %v", eps, i, want[i], got[i])
					}
				}
			}

			// Both streams keep evolving identically after the restore point.
			d := Delta{Cells: []int{0, tc.p.K - 1}, Values: []float64{2.5, -1.25}}
			if err := st.Apply(d); err != nil {
				t.Fatal(err)
			}
			if err := rec.Apply(d); err != nil {
				t.Fatal(err)
			}
			want, _ := st.AnswerWith(t.Context(), nil, 0, NewSource(9))
			got, _ := rec.AnswerWith(t.Context(), nil, 0, NewSource(9))
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("post-restore apply drifted at %d: %v vs %v", i, want[i], got[i])
				}
			}
		})
	}
}

func TestRestoreStreamRejectsCorruptShapes(t *testing.T) {
	eng, err := Open(LinePolicy(16), EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := eng.Prepare(AllRanges1D(16), Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.OpenStream(pl, make([]float64, 16), StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	good := st.ExportState()

	if _, err := eng.RestoreStream(pl, nil); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("nil state: %v", err)
	}
	wrongDomain := *good
	wrongDomain.Database = make([]float64, 8)
	if _, err := eng.RestoreStream(pl, &wrongDomain); !errors.Is(err, ErrDomainMismatch) {
		t.Fatalf("wrong domain: %v", err)
	}
	truncated := *good
	truncated.Artifacts = good.Artifacts[:len(good.Artifacts)-1]
	if _, err := eng.RestoreStream(pl, &truncated); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("truncated artifacts: %v", err)
	}
}

// TestContinualRestartEquivalence is the satellite property: run a
// continual-release stream for a few epochs, snapshot mid-horizon, restore,
// and drive both the original and the recovered stream to the end of the
// horizon with identical inputs and noise seeds. The recovered run must
// never re-noise a node already closed before the snapshot (its restored
// answers are bitwise the originals), must produce identical releases after
// the restore point, and the ledger's worst-case spend must stay ≤ ε at
// every horizon on both runs.
func TestContinualRestartEquivalence(t *testing.T) {
	const (
		k      = 24
		eps    = 2.0
		epochs = 16
		window = 4
	)
	p := LinePolicy(k)
	w := AllRanges1D(k)
	eng, err := Open(p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := eng.Prepare(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := eng.OpenStream(pl, make([]float64, k), StreamOptions{
		Continual: &BudgetContinual{Epsilon: eps, Epochs: epochs, Window: window},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Uninterrupted run. Pre-splitting one parent source into per-epoch
	// sources gives each epoch a noise stream that depends only on the epoch
	// index, so the interrupted run can reproduce the post-snapshot noise
	// exactly.
	const snapAt = 7
	parent := NewSource(1234)
	srcs := parent.SplitN(epochs)
	baseRels := []*EpochRelease{}
	var snap *StreamState
	for e := 0; e < epochs; e++ {
		applyEpoch(t, base, e)
		rel, err := base.Release(srcs[e])
		if err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
		baseRels = append(baseRels, rel)
		if s := base.Ledger().Spent(); s.Epsilon > eps*(1+1e-12) {
			t.Fatalf("epoch %d: spend ε=%g > %g", rel.Epoch, s.Epsilon, eps)
		}
		if rel.Epoch == snapAt {
			// Serialize through JSON exactly as the daemon snapshot would.
			raw, err := json.Marshal(base.ExportState())
			if err != nil {
				t.Fatal(err)
			}
			snap = &StreamState{}
			if err := json.Unmarshal(raw, snap); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Crash-and-recover at snapAt.
	rec, err := eng.RestoreStream(pl, snap)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	led := rec.Ledger()
	if led.Epochs() != snapAt {
		t.Fatalf("recovered ledger at epoch %d, want %d", led.Epochs(), snapAt)
	}
	nodesAtSnap := led.Nodes()
	if nodesAtSnap <= 0 {
		t.Fatal("no closed nodes recovered")
	}

	// The recovered stream replays the rest of the horizon with the same
	// per-epoch noise seeds.
	parent2 := NewSource(1234)
	srcs2 := parent2.SplitN(epochs)
	for e := snapAt; e < epochs; e++ {
		applyEpoch(t, rec, e)
		rel, err := rec.Release(srcs2[e])
		if err != nil {
			t.Fatalf("recovered epoch %d: %v", e, err)
		}
		want := baseRels[e]
		if rel.Epoch != want.Epoch || rel.WindowStart != want.WindowStart || rel.Nodes != want.Nodes {
			t.Fatalf("recovered release %d = %+v, want %+v", e, rel, want)
		}
		for i := range want.Answers {
			if rel.Answers[i] != want.Answers[i] {
				t.Fatalf("epoch %d answer[%d] drifted: %v vs %v — a restored node was re-noised",
					rel.Epoch, i, rel.Answers[i], want.Answers[i])
			}
		}
		if s := rec.Ledger().Spent(); s.Epsilon > eps*(1+1e-12) {
			t.Fatalf("recovered epoch %d: spend ε=%g > %g", rel.Epoch, s.Epsilon, eps)
		}
	}
	// Ledger counters converge with the uninterrupted run: same total node
	// count means no node was noised twice across the crash.
	if rec.Ledger().Nodes() != base.Ledger().Nodes() {
		t.Fatalf("recovered run noised %d nodes, uninterrupted %d", rec.Ledger().Nodes(), base.Ledger().Nodes())
	}
	if rec.Ledger().Spent() != base.Ledger().Spent() {
		t.Fatalf("ledger spend diverged: %+v vs %+v", rec.Ledger().Spent(), base.Ledger().Spent())
	}
	// The horizon is exactly exhausted on both.
	if _, err := rec.Release(NewSource(1)); !errors.Is(err, ErrEpochsExhausted) {
		t.Fatalf("past horizon: %v", err)
	}
}

// applyEpoch folds epoch e's deterministic delta batch into st.
func applyEpoch(t *testing.T, st *Stream, e int) {
	t.Helper()
	cells := []int{(e * 3) % 24, (e*5 + 1) % 24}
	vals := []float64{float64(e%4 + 1), 0.5 * float64(e%3)}
	if err := st.Apply(Delta{Cells: cells, Values: vals}); err != nil {
		t.Fatalf("apply epoch %d: %v", e, err)
	}
}
