// Benchmarks regenerating every table and figure of the paper's evaluation
// (see the per-experiment index in DESIGN.md), plus ablations of the design
// choices called out there. Each figure bench runs the corresponding
// experiment at reduced-but-faithful sizes and reports the headline ratio
// the paper's narrative rests on as a custom metric, so a regression in the
// *shape* of a result shows up as a metric change, not just a time change.
//
//	go test -bench=. -benchmem
//
// cmd/blowfishbench prints the full tables (use -full for paper scale).
package blowfish

import (
	"math"
	"testing"

	"github.com/privacylab/blowfish/internal/core"
	"github.com/privacylab/blowfish/internal/eval"
	"github.com/privacylab/blowfish/internal/linalg"
	"github.com/privacylab/blowfish/internal/lowerbound"
	"github.com/privacylab/blowfish/internal/mech"
	"github.com/privacylab/blowfish/internal/noise"
	"github.com/privacylab/blowfish/internal/policy"
	"github.com/privacylab/blowfish/internal/sparse"
	"github.com/privacylab/blowfish/internal/strategy"
	"github.com/privacylab/blowfish/internal/workload"
)

func benchOpts() eval.Options {
	return eval.Options{Runs: 2, Queries: 400, Seed: 1, DomainScale: 16} // k = 256
}

// BenchmarkTable1Datasets regenerates Table 1 (dataset statistics).
func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Table1Experiment(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3ErrorBounds regenerates the Figure 3 error-bound table
// (empirical error of every workload/policy row vs its DP counterpart) and
// reports the row-1 Blowfish-vs-Privelet improvement factor.
func BenchmarkFig3ErrorBounds(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		tabs, err := eval.Fig3Experiment(eval.QuickFig3())
		if err != nil {
			b.Fatal(err)
		}
		last := len(tabs[0].Rows) - 1
		ratio = tabs[0].Cells[last][1] / tabs[0].Cells[last][0]
	}
	b.ReportMetric(ratio, "privelet/blowfish")
}

// fig8Panel runs one Section 6 panel and returns the ratio of the first DP
// baseline's error to the first Blowfish algorithm's error on the last row.
func fig8Panel(b *testing.B, run func(float64, eval.Options) (*eval.Table, error), eps float64, blowCol string) float64 {
	b.Helper()
	tab, err := run(eps, benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	last := tab.Rows[len(tab.Rows)-1]
	base, err := tab.Cell(last, tab.Columns[0])
	if err != nil {
		b.Fatal(err)
	}
	blow, err := tab.Cell(last, blowCol)
	if err != nil {
		b.Fatal(err)
	}
	return base / blow
}

// BenchmarkFig8Hist regenerates the Hist panels (Fig 8b at ε=0.01; Fig 8f
// uses ε=0.1 — swept by cmd/blowfishbench).
func BenchmarkFig8Hist(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = fig8Panel(b, eval.HistExperiment, 0.1, "Transformed + Laplace")
	}
	b.ReportMetric(ratio, "laplace/blowfish")
}

// BenchmarkFig8Range1DG1 regenerates the 1D-Range G¹_k panels (Fig 8c/8g).
func BenchmarkFig8Range1DG1(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = fig8Panel(b, eval.Range1DG1Experiment, 0.1, "Transformed + Laplace")
	}
	b.ReportMetric(ratio, "privelet/blowfish")
}

// BenchmarkFig8Range1DG4 regenerates the 1D-Range G⁴_k domain sweep
// (Fig 8d/8h).
func BenchmarkFig8Range1DG4(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = fig8Panel(b, eval.Range1DG4Experiment, 0.1, "Transformed + Laplace")
	}
	b.ReportMetric(ratio, "privelet/blowfish")
}

// BenchmarkFig8Range2D regenerates the 2D-Range panels (Fig 8a/8e).
func BenchmarkFig8Range2D(b *testing.B) {
	var ratio float64
	opts := benchOpts()
	opts.Queries = 200
	for i := 0; i < b.N; i++ {
		tab, err := eval.Range2DExperiment(0.1, opts)
		if err != nil {
			b.Fatal(err)
		}
		priv, _ := tab.Cell("T100", "Privelet")
		blow, _ := tab.Cell("T100", "Transformed + Privelet")
		ratio = priv / blow
	}
	b.ReportMetric(ratio, "privelet/blowfish")
}

// BenchmarkFig9Hist and friends regenerate the Figure 9 panels (ε = 1 and
// 0.001; the large-ε end is where the data-dependent Blowfish variants win
// almost everywhere).
func BenchmarkFig9Hist(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = fig8Panel(b, eval.HistExperiment, 1, "Trans + Dawa + Cons")
	}
	b.ReportMetric(ratio, "laplace/transdawa")
}

// BenchmarkFig9Range1DG1 regenerates Fig 9c/9g.
func BenchmarkFig9Range1DG1(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = fig8Panel(b, eval.Range1DG1Experiment, 1, "Transformed + Laplace")
	}
	b.ReportMetric(ratio, "privelet/blowfish")
}

// BenchmarkFig9Range1DG4 regenerates Fig 9d/9h.
func BenchmarkFig9Range1DG4(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = fig8Panel(b, eval.Range1DG4Experiment, 1, "Transformed + Laplace")
	}
	b.ReportMetric(ratio, "privelet/blowfish")
}

// BenchmarkFig9Range2D regenerates Fig 9a/9e.
func BenchmarkFig9Range2D(b *testing.B) {
	var ratio float64
	opts := benchOpts()
	opts.Queries = 200
	for i := 0; i < b.N; i++ {
		tab, err := eval.Range2DExperiment(1, opts)
		if err != nil {
			b.Fatal(err)
		}
		priv, _ := tab.Cell("T100", "Privelet")
		blow, _ := tab.Cell("T100", "Transformed + Privelet")
		ratio = priv / blow
	}
	b.ReportMetric(ratio, "privelet/blowfish")
}

// BenchmarkFig10SVD1D regenerates the Figure 10a lower-bound sweep and
// reports the DP-to-G¹ bound ratio at the largest domain.
func BenchmarkFig10SVD1D(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		tab, err := eval.SVD1DExperiment(eval.QuickFig10())
		if err != nil {
			b.Fatal(err)
		}
		last := tab.Rows[len(tab.Rows)-1]
		dp, _ := tab.Cell(last, "unbounded DP")
		g1, _ := tab.Cell(last, "Theta=1")
		ratio = dp / g1
	}
	b.ReportMetric(ratio, "dp/theta1")
}

// BenchmarkFig10Spectral is the spectral engine's acceptance benchmark: one
// Corollary A.2 bound on the k=1024 line domain (1023 edges, just past the
// DenseEigenMaxDim dispatch threshold) through the dense Gram+tred2
// reference versus the matvec-only Lanczos path. The Lanczos sub-benchmark
// asserts the resolved spectra agree to 1e-9 of the spectral radius; the
// acceptance floor is a ≥10× per-bound speedup (≈20× serial on dev
// hardware, growing with k — ≈130× at k=2048).
func BenchmarkFig10Spectral(b *testing.B) {
	const k = 1024
	p, err := policy.DistanceThreshold([]int{k}, 1)
	if err != nil {
		b.Fatal(err)
	}
	gs := lowerbound.RangeGramSource1D(k)
	dBound, dsv, err := lowerbound.SVDBoundDense(gs, p, 1, 0.001)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("dense-tred2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := lowerbound.SVDBoundDense(gs, p, 1, 0.001); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lanczos", func(b *testing.B) {
		var sBound float64
		var ssv []float64
		for i := 0; i < b.N; i++ {
			var err error
			sBound, ssv, err = lowerbound.SVDBoundSpectral(gs, p, 1, 0.001, 0, 0)
			if err != nil {
				b.Fatal(err)
			}
		}
		lmax := dsv[0] * dsv[0]
		for i := range ssv {
			if d := math.Abs(ssv[i]*ssv[i] - dsv[i]*dsv[i]); d > 1e-9*lmax {
				b.Fatalf("sigma[%d]: lanczos %.15g vs dense %.15g", i, ssv[i], dsv[i])
			}
		}
		if sBound > dBound*(1+1e-9) || sBound < 0.99*dBound {
			b.Fatalf("spectral bound %g vs dense %g out of certified range", sBound, dBound)
		}
		b.ReportMetric(sBound/dBound, "bound-ratio")
	})
}

// BenchmarkFig10SVD2D regenerates the Figure 10b sweep.
func BenchmarkFig10SVD2D(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		tab, err := eval.SVD2DExperiment(eval.QuickFig10())
		if err != nil {
			b.Fatal(err)
		}
		last := tab.Rows[len(tab.Rows)-1]
		bounded, _ := tab.Cell(last, "bounded DP")
		g1, _ := tab.Cell(last, "Theta=1")
		ratio = bounded / g1
	}
	b.ReportMetric(ratio, "bounded/theta1")
}

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationTreeVsDenseTransform compares the O(k) subtree-sum
// database transform against the dense pseudo-inverse on the same tree
// policy.
func BenchmarkAblationTreeVsDenseTransform(b *testing.B) {
	k := 256
	p := policy.Line(k)
	tr, err := core.New(p)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, k)
	for i := range x {
		x[i] = float64(i % 17)
	}
	b.Run("tree-fast-path", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tr.DatabaseTransform(x); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dense-pseudo-inverse", func(b *testing.B) {
		pg := tr.PG()
		for i := 0; i < b.N; i++ {
			if _, err := linalg.RightInverse(pg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationOracleKinds compares the three oracle kinds inside the
// 2-D grid strategy (Theorem 5.4): Privelet should dominate for random
// rectangles.
func BenchmarkAblationOracleKinds(b *testing.B) {
	dims := []int{32, 32}
	src := noise.NewSource(1)
	w := workload.RandomRangesKd(dims, 300, src.Split())
	x := make([]float64, 1024)
	for _, kind := range []struct {
		name string
		k    mech.OracleKind
	}{{"cell", mech.CellKind}, {"hier", mech.HierKind}, {"privelet", mech.PriveletKind}} {
		kind := kind
		b.Run(kind.name, func(b *testing.B) {
			alg := strategy.GridPolicyRange2D(dims, kind.k, strategy.Config{})
			var mse float64
			for i := 0; i < b.N; i++ {
				var err error
				mse, err = eval.MeasureMSE(alg, w, x, 0.5, 2, src.Split())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(mse, "mse")
		})
	}
}

// BenchmarkAblationThetaLineStrategies compares the two implementations of
// the G^θ_k mechanism: the plain tree path (Laplace on x_G) versus the
// Theorem 5.5 grouped strategy with Privelet oracles.
func BenchmarkAblationThetaLineStrategies(b *testing.B) {
	k, theta := 1024, 16
	src := noise.NewSource(2)
	w := workload.RandomRanges1D(k, 400, src.Split())
	x := make([]float64, k)
	algs, err := strategy.ThetaLineAlgorithms(k, theta)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		alg  strategy.Algorithm
	}{
		{"tree-laplace", algs[0]},
		{"grouped-privelet", strategy.ThetaLineGrouped(k, theta, mech.PriveletKind)},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var mse float64
			for i := 0; i < b.N; i++ {
				var err error
				mse, err = eval.MeasureMSE(tc.alg, w, x, 0.5, 2, src.Split())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(mse, "mse")
		})
	}
}

// BenchmarkPlanReuse compares one release through a prepared Plan against
// the legacy per-call Answer (which rebuilds the transform and strategy
// every time) on the Figure 3 row-1 setting: random 1-D ranges under the
// line policy. The prepared path is the Engine/Plan hot path; ≥5× is the
// expected gap at this size. cmd/blowfishbench -exp planreuse reports the
// same comparison through the blowfishbench/v1 JSON schema.
func BenchmarkPlanReuse(b *testing.B) {
	const k = 1024
	src := noise.NewSource(8)
	p := LinePolicy(k)
	w := RandomRanges1D(k, 2000, NewSource(8))
	x := make([]float64, k)
	for i := range x {
		x[i] = float64(i % 13)
	}
	b.Run("legacy-answer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Answer(w, x, p, 1.0, NewSource(src.Int63()), Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared-plan", func(b *testing.B) {
		eng, err := Open(p, EngineOptions{})
		if err != nil {
			b.Fatal(err)
		}
		plan, err := eng.Prepare(w, Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plan.Answer(x, 1.0, NewSource(src.Int63())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlanAnswerBatch measures the concurrent batch path: one shared
// plan answering a batch of databases with pre-split noise streams.
func BenchmarkPlanAnswerBatch(b *testing.B) {
	const k = 1024
	eng, err := Open(LinePolicy(k), EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := eng.Prepare(RandomRanges1D(k, 1000, NewSource(9)), Options{})
	if err != nil {
		b.Fatal(err)
	}
	xs := make([][]float64, 16)
	for i := range xs {
		xs[i] = make([]float64, k)
	}
	src := NewSource(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.AnswerBatch(xs, 1.0, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnswerSparse is the headline of the sparse operator layer: one
// release of a 2000-query random-range workload on the domain-8192 line
// policy, answered through a fully dense reconstruction matrix (what
// Plan.Answer costs without density selection — a q×|E| matvec per release;
// the tree strategies' coefficient lists were already O(nnz), so this is
// the floor the operator layer guarantees for every strategy, not a
// regression at HEAD) versus the Engine/Plan path whose compile step
// selects the CSR operator (O(nnz) per release). Expected gap at this size
// is >10×; ≥5× is the acceptance floor at GOMAXPROCS=4. Both paths compile
// exactly once — the timed loops perform zero recompilations, asserted via
// the strategy and transform counters.
func BenchmarkAnswerSparse(b *testing.B) {
	const k, queries = 8192, 2000
	w := RandomRanges1D(k, queries, NewSource(21))
	x := make([]float64, k)
	for i := range x {
		x[i] = float64(i % 31)
	}
	src := noise.NewSource(22)
	assertNoRecompiles := func(b *testing.B, run func()) {
		b.Helper()
		compiles, builds := strategy.Compilations(), core.TransformBuilds()
		b.ResetTimer()
		run()
		b.StopTimer()
		if strategy.Compilations() != compiles || core.TransformBuilds() != builds {
			b.Fatal("timed loop recompiled the strategy or transform")
		}
	}
	b.Run("dense-matvec", func(b *testing.B) {
		tr, err := core.New(policy.Line(k))
		if err != nil {
			b.Fatal(err)
		}
		prep, err := strategy.CompileTreeDense("blowfish(tree)", tr, 1, strategy.LaplaceEstimator, w, strategy.Config{})
		if err != nil {
			b.Fatal(err)
		}
		assertNoRecompiles(b, func() {
			for i := 0; i < b.N; i++ {
				if _, err := prep.Answer(x, 1.0, noise.NewSource(src.Int63())); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("sparse-operator", func(b *testing.B) {
		eng, err := Open(LinePolicy(k), EngineOptions{})
		if err != nil {
			b.Fatal(err)
		}
		plan, err := eng.Prepare(w, Options{})
		if err != nil {
			b.Fatal(err)
		}
		assertNoRecompiles(b, func() {
			for i := 0; i < b.N; i++ {
				if _, err := plan.Answer(x, 1.0, NewSource(src.Int63())); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	// CSR matvec kernel comparison (ROADMAP "SIMD-friendly CSR kernels"):
	// the same compiled reconstruction matrix driven through the 4-wide
	// unrolled row kernel versus the pre-unroll one-entry-at-a-time
	// reference. Both run serial so the gap isolates the unroll; the two are
	// bitwise identical (TestApplyUnrolledBitwiseVsSimple).
	tr, err := core.New(policy.Line(k))
	if err != nil {
		b.Fatal(err)
	}
	prep, err := strategy.CompileTree("blowfish(tree)", tr, 1, strategy.LaplaceEstimator, w, strategy.Config{})
	if err != nil {
		b.Fatal(err)
	}
	csr, ok := prep.Operator().(*sparse.CSR)
	if !ok {
		b.Fatalf("compiled operator is %T, want *sparse.CSR", prep.Operator())
	}
	rows, cols := csr.Dims()
	xg := make([]float64, cols)
	for i := range xg {
		xg[i] = float64(i%13) - 6
	}
	out := make([]float64, rows)
	prevPar := linalg.SetParallelism(1)
	defer linalg.SetParallelism(prevPar)
	b.Run("csr-matvec-simple", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csr.ApplySimple(out, xg)
		}
	})
	b.Run("csr-matvec-unrolled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csr.Apply(out, xg)
		}
	})
}

// --- Micro-benchmarks of the hot substrates ---

// BenchmarkDatabaseTransformLine measures the O(k) tree transform.
func BenchmarkDatabaseTransformLine(b *testing.B) {
	tr, err := core.New(policy.Line(4096))
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.DatabaseTransform(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPriveletOracleQuery measures one interval-noise evaluation.
func BenchmarkPriveletOracleQuery(b *testing.B) {
	o := mech.NewPriveletOracle(4096, 1, noise.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.IntervalNoise(100, 3000)
	}
}

// BenchmarkGridKd3D measures the general-dimension Theorem 5.4 strategy on
// a 3-D grid (an extension beyond the paper's 2-D evaluation).
func BenchmarkGridKd3D(b *testing.B) {
	dims := []int{16, 16, 16}
	src := noise.NewSource(5)
	w := workload.RandomRangesKd(dims, 300, src.Split())
	x := make([]float64, 4096)
	alg := strategy.GridPolicyRangeKd(dims, strategy.Config{})
	b.ResetTimer()
	var mse float64
	for i := 0; i < b.N; i++ {
		var err error
		mse, err = eval.MeasureMSE(alg, w, x, 0.5, 1, src.Split())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mse, "mse")
}

// BenchmarkMul measures the dense product kernel serially and on the
// parallel row-blocked path; the headline parallel win of the multicore
// refactor (≥ 2× expected at GOMAXPROCS ≥ 4).
func BenchmarkMul(b *testing.B) {
	const n = 384
	src := noise.NewSource(6)
	a := linalg.New(n, n)
	c := linalg.New(n, n)
	for i := range a.Data {
		a.Data[i] = src.NormFloat64()
		c.Data[i] = src.NormFloat64()
	}
	for _, tc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			prev := linalg.SetParallelism(tc.workers)
			defer linalg.SetParallelism(prev)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				linalg.Mul(a, c)
			}
		})
	}
}

// BenchmarkGram measures the symmetric AᵀA kernel (half the flops of Mul)
// serially and in parallel; it is the hot step of PseudoInverseTall and the
// SVD lower bounds.
func BenchmarkGram(b *testing.B) {
	const n = 384
	src := noise.NewSource(7)
	a := linalg.New(n, n)
	for i := range a.Data {
		a.Data[i] = src.NormFloat64()
	}
	for _, tc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			prev := linalg.SetParallelism(tc.workers)
			defer linalg.SetParallelism(prev)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				linalg.Gram(a)
			}
		})
	}
}

// BenchmarkRange2DParallelism runs the heaviest Section 6 experiment at
// Parallelism 1 and at one-worker-per-CPU; the ratio of the two timings is
// the end-to-end speedup of the experiment scheduler.
func BenchmarkRange2DParallelism(b *testing.B) {
	for _, tc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			opts := benchOpts()
			opts.Queries = 200
			opts.Parallelism = tc.workers
			prev := linalg.SetParallelism(tc.workers)
			defer linalg.SetParallelism(prev)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eval.Range2DExperiment(0.1, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig10Parallelism sweeps the Figure 10a SVD bounds — pure
// eigensolver work — serially and in parallel.
func BenchmarkFig10Parallelism(b *testing.B) {
	for _, tc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			o := eval.QuickFig10()
			o.Parallelism = tc.workers
			prev := linalg.SetParallelism(tc.workers)
			defer linalg.SetParallelism(prev)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eval.SVD1DExperiment(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDAWA4096 measures a full DAWA run at the paper's domain size.
func BenchmarkDAWA4096(b *testing.B) {
	src := noise.NewSource(4)
	x := make([]float64, 4096)
	x[100] = 1000
	x[2000] = 500
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mech.NewDAWA(x, 0.1, 0.25, src.Split())
	}
}
