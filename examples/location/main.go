// Location privacy: answer 2-D range queries over a city map under a grid
// policy — the geo-indistinguishability scenario of the paper's
// introduction. Revealing which part of town is busy is fine; whether a
// person was at home or at the café next door is protected.
//
// The same query workload is prepared once per policy; each Plan.Answer is
// an independent private release from the compiled strategy.
//
//	go run ./examples/location
package main

import (
	"fmt"

	blowfish "github.com/privacylab/blowfish"
)

func main() {
	const side = 32 // 32×32 grid over the map
	dims := []int{side, side}

	// Synthetic check-in counts: two hotspots (downtown and a stadium).
	x := make([]float64, side*side)
	put := func(r, c int, mass float64, spread int) {
		for dr := -spread; dr <= spread; dr++ {
			for dc := -spread; dc <= spread; dc++ {
				rr, cc := r+dr, c+dc
				if rr >= 0 && rr < side && cc >= 0 && cc < side {
					x[rr*side+cc] += mass / float64((2*spread+1)*(2*spread+1))
				}
			}
		}
	}
	put(8, 8, 4000, 3)
	put(24, 20, 2500, 2)

	src := blowfish.NewSource(7)
	queries := blowfish.RandomRangesKd(dims, 2000, src.Split())
	truth := queries.Answers(x)

	// Policy: cells within L1 distance 1 are indistinguishable (θ=1 grid).
	// Larger θ widens the protected neighborhood; see θ=4 below.
	gridEngine, err := blowfish.Open(blowfish.GridPolicy(side), blowfish.EngineOptions{})
	if err != nil {
		panic(err)
	}
	gridPlan, err := gridEngine.Prepare(queries, blowfish.Options{})
	if err != nil {
		panic(err)
	}

	const eps = 0.5
	answers, err := gridPlan.Answer(x, eps, src.Split())
	if err != nil {
		panic(err)
	}
	fmt.Printf("grid policy G^1 (theta=1): per-query MSE = %.1f\n", mse(answers, truth))

	// A wider protected neighborhood via a distance-threshold policy.
	theta4, err := blowfish.DistanceThresholdPolicy(dims, 4)
	if err != nil {
		panic(err)
	}
	theta4Engine, err := blowfish.Open(theta4, blowfish.EngineOptions{})
	if err != nil {
		panic(err)
	}
	theta4Plan, err := theta4Engine.Prepare(queries, blowfish.Options{})
	if err != nil {
		panic(err)
	}
	answers4, err := theta4Plan.Answer(x, eps, src.Split())
	if err != nil {
		panic(err)
	}
	fmt.Printf("grid policy G^4 (theta=4): per-query MSE = %.1f\n", mse(answers4, truth))

	// Standard differential privacy for comparison (Privelet over the grid
	// would be the usual choice; here we use the bounded policy, which the
	// library answers via its generic machinery).
	fmt.Println("\nBoth policies hide fine-grained movements; theta=4 protects a")
	fmt.Println("wider radius at the cost of extra noise (the Lemma 4.5 stretch).")
	fmt.Printf("\nsample query answers (first 3):\n")
	for i := 0; i < 3; i++ {
		fmt.Printf("  true=%8.1f  theta1=%8.1f  theta4=%8.1f\n", truth[i], answers[i], answers4[i])
	}
}

func mse(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s / float64(len(a))
}
