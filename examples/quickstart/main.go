// Quickstart: publish a private histogram under a Blowfish line policy
// through the Engine/Plan API.
//
// The database is a histogram of binned salaries. Under the line policy
// G¹_k an adversary may learn a record's rough salary range but not
// distinguish adjacent bins — a weaker promise than differential privacy
// that buys dramatically more accuracy.
//
// An Engine compiles the policy transform once; a Plan binds a workload to
// the selected strategy once; Plan.Answer is the per-release hot path and
// the Engine's Accountant tracks cumulative (ε, δ) spend.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"

	blowfish "github.com/privacylab/blowfish"
)

func main() {
	const k = 64 // 64 salary bins
	// A synthetic salary histogram: most mass in the middle bins.
	x := make([]float64, k)
	for i := range x {
		d := float64(i) - 28
		x[i] = math.Round(400 * math.Exp(-d*d/120))
	}

	// Compile the line policy once, with a total privacy budget of ε=1.
	engine, err := blowfish.Open(blowfish.LinePolicy(k), blowfish.EngineOptions{
		Budget: blowfish.Budget{Epsilon: 1},
	})
	if err != nil {
		panic(err)
	}
	// Bind the histogram workload to the selected strategy once.
	plan, err := engine.Prepare(blowfish.Histogram(k), blowfish.Options{
		Estimator: blowfish.EstimatorConsistent, // prefix sums are monotone: project back
	})
	if err != nil {
		panic(err)
	}

	src := blowfish.NewSource(42)
	const eps = 0.5
	noisy, err := plan.Answer(x, eps, src)
	if err != nil {
		panic(err)
	}

	// Compare against standard differential privacy at the same budget:
	// per-bin Laplace(1/eps) noise, through its own engine.
	dpEngine, err := blowfish.Open(blowfish.UnboundedPolicy(k), blowfish.EngineOptions{})
	if err != nil {
		panic(err)
	}
	dpPlan, err := dpEngine.Prepare(blowfish.Histogram(k), blowfish.Options{})
	if err != nil {
		panic(err)
	}
	dpNoisy, err := dpPlan.Answer(x, eps, src)
	if err != nil {
		panic(err)
	}

	fmt.Printf("%4s %8s %14s %14s\n", "bin", "true", "blowfish(G1)", "unbounded DP")
	for i := 0; i < k; i += 8 {
		fmt.Printf("%4d %8.0f %14.1f %14.1f\n", i, x[i], noisy[i], dpNoisy[i])
	}
	fmt.Printf("\ntotal squared error: blowfish=%.0f  dp=%.0f\n",
		sqErr(noisy, x), sqErr(dpNoisy, x))

	// The accountant has charged the release; half the ε=1 budget remains.
	spent := engine.Accountant().Spent()
	remaining, _ := engine.Accountant().Remaining()
	fmt.Printf("\nbudget: spent eps=%.2f, remaining eps=%.2f\n", spent.Epsilon, remaining.Epsilon)

	fmt.Println("\nThe Blowfish release uses the transformational equivalence:")
	fmt.Println("the line policy's transform is the prefix-sum vector, whose")
	fmt.Println("sensitivity is 1, and consistency post-processing exploits its")
	fmt.Println("monotonicity (Sections 4-5 of the paper).")
}

func sqErr(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
