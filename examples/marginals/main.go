// Marginals over a 3-D relational domain: release one- and two-way
// marginals of an (age × income × region) table under a grid policy, using
// the general-dimension Theorem 5.4 strategy, and compare with the
// (ε, δ)-Gaussian tree pipeline of the Appendix A extension.
//
// A single Engine serves both marginal workloads (one Plan each), and the
// δ spend of the Gaussian release is tracked by its engine's Accountant.
//
//	go run ./examples/marginals
package main

import (
	"fmt"

	blowfish "github.com/privacylab/blowfish"
)

func main() {
	dims := []int{8, 8, 4} // age bins × income bins × regions
	k := dims[0] * dims[1] * dims[2]
	src := blowfish.NewSource(5)

	// Synthetic table: income correlates with age, regions uneven.
	x := make([]float64, k)
	idx := 0
	for a := 0; a < dims[0]; a++ {
		for inc := 0; inc < dims[1]; inc++ {
			for r := 0; r < dims[2]; r++ {
				d := a - inc
				if d < 0 {
					d = -d
				}
				x[idx] = float64((8 - d) * (r + 1) * 3)
				idx++
			}
		}
	}

	// Policy: L1-adjacent cells indistinguishable — a record's exact bin is
	// protected, its neighborhood is not. One Engine serves every marginal.
	pol, err := blowfish.DistanceThresholdPolicy(dims, 1)
	if err != nil {
		panic(err)
	}
	engine, err := blowfish.Open(pol, blowfish.EngineOptions{})
	if err != nil {
		panic(err)
	}

	const eps = 0.5
	// Two-way marginal over (age, income), summing out regions.
	m2, err := blowfish.Marginals(dims, []bool{true, true, false})
	if err != nil {
		panic(err)
	}
	plan2, err := engine.Prepare(m2, blowfish.Options{})
	if err != nil {
		panic(err)
	}
	got, err := plan2.Answer(x, eps, src.Split())
	if err != nil {
		panic(err)
	}
	truth := m2.Answers(x)
	fmt.Printf("(age,income) marginal: %d cells, per-cell MSE %.2f under G^1_{k^3}\n",
		m2.Len(), mse(got, truth))

	// One-way region marginal, through the same engine.
	m1, err := blowfish.Marginals(dims, []bool{false, false, true})
	if err != nil {
		panic(err)
	}
	plan1, err := engine.Prepare(m1, blowfish.Options{})
	if err != nil {
		panic(err)
	}
	got1, err := plan1.Answer(x, eps, src.Split())
	if err != nil {
		panic(err)
	}
	truth1 := m1.Answers(x)
	fmt.Println("\nregion totals (true vs released):")
	for r := range got1 {
		fmt.Printf("  region %d: %8.0f  ->  %8.1f\n", r, truth1[r], got1[r])
	}

	// Appendix A extension: (ε, δ)-Blowfish with Gaussian noise on a tree
	// policy. Flatten to an ordered 1-D view for a line policy demo; the
	// Accountant tracks the (ε, δ) spend.
	lineEngine, err := blowfish.Open(blowfish.LinePolicy(k), blowfish.EngineOptions{})
	if err != nil {
		panic(err)
	}
	hist := blowfish.Histogram(k)
	gaussPlan, err := lineEngine.Prepare(hist, blowfish.Options{
		Estimator: blowfish.EstimatorGaussian, Delta: 1e-6,
	})
	if err != nil {
		panic(err)
	}
	gauss, err := gaussPlan.Answer(x, eps, src.Split())
	if err != nil {
		panic(err)
	}
	spent := lineEngine.Accountant().Spent()
	fmt.Printf("\n(eps, delta)-Gaussian histogram release: per-cell MSE %.1f at delta=1e-6\n",
		mse(gauss, hist.Answers(x)))
	fmt.Printf("accountant: spent (eps=%g, delta=%g) across %d release(s)\n",
		spent.Epsilon, spent.Delta, lineEngine.Accountant().Releases())
}

func mse(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s / float64(len(a))
}
