// Census-style sparse histogram: demonstrates the data-dependent Blowfish
// pipeline of Section 5.4 — DAWA on the transformed database plus the
// consistency (isotonic) projection — on a sparse "capital loss"-like
// attribute, and the sensitive-attribute policy of Appendix E for a
// relational table.
//
// The sparse-histogram part shows the Engine/Plan shape for comparing
// estimators: one Engine for the policy, one Plan per estimator, all
// sharing the compiled transform.
//
//	go run ./examples/census
package main

import (
	"fmt"

	blowfish "github.com/privacylab/blowfish"
)

func main() {
	// Part 1: sparse histogram under the line policy.
	const k = 512
	x := make([]float64, k)
	// 97% zeros, a few spikes (most people report zero capital loss).
	x[0] = 9000
	x[155] = 420
	x[156] = 310
	x[300] = 120
	src := blowfish.NewSource(3)
	w := blowfish.Histogram(k)
	truth := w.Answers(x)

	// One engine for the line policy; every estimator's plan reuses its
	// compiled transform.
	engine, err := blowfish.Open(blowfish.LinePolicy(k), blowfish.EngineOptions{})
	if err != nil {
		panic(err)
	}

	const eps = 0.1
	for _, est := range []struct {
		name string
		e    blowfish.Estimator
	}{
		{"Transformed + Laplace", blowfish.EstimatorLaplace},
		{"Transformed + ConsistentEst", blowfish.EstimatorConsistent},
		{"Trans + Dawa + Cons", blowfish.EstimatorDAWAConsistent},
	} {
		plan, err := engine.Prepare(w, blowfish.Options{Estimator: est.e})
		if err != nil {
			panic(err)
		}
		got, err := plan.Answer(x, eps, src.Split())
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-28s per-cell MSE = %8.2f\n", est.name, mse(got, truth))
	}
	fmt.Println("\nConsistency exploits that the transformed database (prefix sums)")
	fmt.Println("is non-decreasing with as many distinct values as non-zero cells;")
	fmt.Println("on sparse data that collapses most of the noise (Section 5.4.2).")

	// Part 2: a relational table with a sensitive attribute (Appendix E).
	// Attributes: disease status (2 values, sensitive) × age group (4
	// values, public). The policy graph is disconnected: one component per
	// age group; membership in an age group is disclosed, disease is not.
	dims := []int{2, 4}
	pol, err := blowfish.SensitiveAttributePolicy(dims, []bool{true, false})
	if err != nil {
		panic(err)
	}
	comps, err := blowfish.SplitComponents(pol)
	if err != nil {
		panic(err)
	}
	table := []float64{ // counts for (disease, age) cells
		30, 50, 60, 40, // disease = 0
		5, 12, 20, 25, // disease = 1
	}
	fmt.Printf("\nsensitive-attribute policy: %d components (one per age group)\n", len(comps))
	for ci, c := range comps {
		local := c.Restrict(table)
		// Each component is an independent 2-value Blowfish instance; its
		// policy is connected, so one Engine per component answers it.
		ce, err := blowfish.Open(c.Transform.Policy, blowfish.EngineOptions{})
		if err != nil {
			panic(err)
		}
		cp, err := ce.Prepare(blowfish.Histogram(len(local)), blowfish.Options{})
		if err != nil {
			panic(err)
		}
		noisy, err := cp.Answer(local, 1.0, src.Split())
		if err != nil {
			panic(err)
		}
		fmt.Printf("  component %d: domain values %v, true %v, released %.1f\n",
			ci, c.Vertices, local, noisy)
	}
	fmt.Println("Within each component only the disease split is protected; the")
	fmt.Println("age-group totals are public by policy choice.")
}

func mse(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s / float64(len(a))
}
