// Streaming: maintain a bound database incrementally and release a sliding
// window continually.
//
// Part 1 (incremental maintenance): OpenStream binds a compiled Plan to a
// mutable histogram. Apply folds delta batches into the strategy's
// maintained state — O(path depth) per cell for the tree strategy here —
// instead of rebuilding it, and Stream.Answer is then exactly Plan.Answer
// minus the per-release state rebuild. Stream.Stats counts how often the
// fast path won (patches) versus the cost-capped dense fallback
// (recomputes).
//
// Part 2 (continual release): the same OpenStream call with
// StreamOptions.Continual switches to binary-tree counting. Each Release
// closes an epoch, draws noise only for the dyadic tree nodes that close at
// that epoch (at the per-node budget ε/L), and sums closed nodes into a
// trailing-window answer; the ContinualAccountant tracks the closed-form
// per-record lifetime spend, which stays under ε no matter how many epochs
// are released.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"math"

	blowfish "github.com/privacylab/blowfish"
)

func main() {
	const k = 64 // 64 location bins
	src := blowfish.NewSource(42)

	// ----- Part 1: incremental maintenance -------------------------------
	engine, err := blowfish.Open(blowfish.LinePolicy(k), blowfish.EngineOptions{})
	if err != nil {
		panic(err)
	}
	plan, err := engine.Prepare(blowfish.AllRanges1D(k), blowfish.Options{})
	if err != nil {
		panic(err)
	}
	x := make([]float64, k)
	for i := range x {
		x[i] = math.Round(200 * math.Exp(-float64((i-20)*(i-20))/80))
	}
	st, err := engine.OpenStream(plan, x, blowfish.StreamOptions{})
	if err != nil {
		panic(err)
	}
	// Stream 50 delta batches of 8 arrivals each into the trailing (most
	// recent) bins — the append-mostly regime, where each cell's root path
	// in the maintained line transform is short and Apply patches it in
	// place. Apply is cost-capped: a batch whose paths would cost more than
	// a dense O(k) rebuild falls back to one recompute instead, so answers
	// never depend on the fast path.
	for b := 0; b < 50; b++ {
		d := blowfish.Delta{Cells: make([]int, 8), Values: make([]float64, 8)}
		for i := range d.Cells {
			d.Cells[i] = k - 1 - src.Intn(4)
			d.Values[i] = 1
		}
		if err := st.Apply(d); err != nil {
			panic(err)
		}
	}
	noisy, err := st.Answer(0.5, src.Split())
	if err != nil {
		panic(err)
	}
	stats := st.Stats()
	fmt.Printf("incremental: %d cell patches, %d dense recomputes across 50 batches\n",
		stats.Patches, stats.Recomputes)
	fmt.Printf("released %d range queries at eps=0.5, first: %.1f\n\n",
		len(noisy), noisy[0])

	// ----- Part 2: sliding-window continual release ----------------------
	// ε=2 bounds any record's lifetime loss across ALL releases; the stream
	// plans for 16 epochs and answers the trailing 4-epoch window.
	cont, err := engine.OpenStream(plan, make([]float64, k), blowfish.StreamOptions{
		Continual: &blowfish.BudgetContinual{Epsilon: 2, Epochs: 16, Window: 4},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("continual: %d dyadic levels, per-node budget eps=%.3f\n",
		cont.Ledger().Levels(), cont.Ledger().NodeBudget().Epsilon)
	for epoch := 1; epoch <= 6; epoch++ {
		d := blowfish.Delta{Cells: make([]int, 16), Values: make([]float64, 16)}
		for i := range d.Cells {
			d.Cells[i] = src.Intn(k)
			d.Values[i] = 1
		}
		if err := cont.Apply(d); err != nil {
			panic(err)
		}
		rel, err := cont.Release(src.Split())
		if err != nil {
			panic(err)
		}
		fmt.Printf("epoch %2d: window [%d..%d] from %d noised nodes, spent lifetime eps=%.3f\n",
			rel.Epoch, rel.WindowStart, rel.Epoch, rel.Nodes, cont.Ledger().Spent().Epsilon)
	}
}
