// Million-cell walkthrough: a 1024×1024 grid domain (1,048,576 cells) served
// interactively under domain sharding.
//
// EngineOptions.ShardBlock left at 0 shards automatically past 65536 cells:
// the grid compile partitions the domain into contiguous dim-0 slabs, clips
// every range query to the slabs it intersects, and builds one summed-area
// sub-operator per slab as parallel compile work items. Answers evaluate
// slab partials in parallel and reduce them in a fixed ascending order, so
// results are bitwise independent of the worker count — and, on the integer
// count histograms used here, exactly equal to the unsharded engine, which
// this program verifies side by side.
//
// Streams opened on the sharded plan maintain one summed-area table per
// slab, so a single-cell delta patches at most one slab (o(k) per delta)
// where the global table pays up to the full suffix box; the timing printed
// at the end shows the gap.
//
//	go run ./examples/millioncell
//	SIDE=256 go run ./examples/millioncell   # smaller domain, same path
package main

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"time"

	blowfish "github.com/privacylab/blowfish"
)

func main() {
	side := 1024
	if s := os.Getenv("SIDE"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			side = v
		}
	}
	k := side * side
	const queries = 400
	src := blowfish.NewSource(7)

	pol := blowfish.GridPolicy(side)
	w := blowfish.RandomRangesKd([]int{side, side}, queries, src.Split())
	x := make([]float64, k)
	data := src.Split()
	for i := range x {
		x[i] = math.Floor(data.Uniform() * 100)
	}

	// Sharded engine: ShardBlock 0 = automatic (blocks of 65536 cells here).
	start := time.Now()
	engine, err := blowfish.Open(pol, blowfish.EngineOptions{})
	if err != nil {
		panic(err)
	}
	plan, err := engine.Prepare(w, blowfish.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("domain %dx%d (k=%d): compiled %s over %d queries in %v\n",
		side, side, k, plan.Algorithm(), queries, time.Since(start).Round(time.Millisecond))

	start = time.Now()
	noisy, err := plan.Answer(x, 0.5, blowfish.NewSource(1))
	if err != nil {
		panic(err)
	}
	fmt.Printf("answered %d range queries at eps=0.5 in %v (first: %.1f)\n",
		len(noisy), time.Since(start).Round(time.Millisecond), noisy[0])

	// The unsharded engine answers identically on integer counts: the noise
	// pass draws serially from the same Source either way, and integer slab
	// sums are exact under the fixed-order reduce.
	mono, err := blowfish.Open(pol, blowfish.EngineOptions{ShardBlock: -1})
	if err != nil {
		panic(err)
	}
	monoPlan, err := mono.Prepare(w, blowfish.Options{})
	if err != nil {
		panic(err)
	}
	want, err := monoPlan.Answer(x, 0.5, blowfish.NewSource(1))
	if err != nil {
		panic(err)
	}
	for i := range want {
		if noisy[i] != want[i] {
			panic(fmt.Sprintf("query %d: sharded %v != unsharded %v", i, noisy[i], want[i]))
		}
	}
	fmt.Println("sharded answers identical to the unsharded engine, noise included")

	// Streaming: the blocked per-slab tables cap every patch at one slab.
	st, err := engine.OpenStream(plan, x, blowfish.StreamOptions{})
	if err != nil {
		panic(err)
	}
	stMono, err := mono.OpenStream(monoPlan, x, blowfish.StreamOptions{})
	if err != nil {
		panic(err)
	}
	const deltas = 32
	var shardSec, monoSec float64
	for i := 0; i < deltas; i++ {
		d := blowfish.Delta{Cells: []int{data.Intn(k)}, Values: []float64{1}}
		t0 := time.Now()
		if err := st.Apply(d); err != nil {
			panic(err)
		}
		shardSec += time.Since(t0).Seconds()
		t0 = time.Now()
		if err := stMono.Apply(d); err != nil {
			panic(err)
		}
		monoSec += time.Since(t0).Seconds()
	}
	fmt.Printf("stream deltas: blocked tables %.2f ms/delta vs global table %.2f ms/delta (%.1fx)\n",
		1e3*shardSec/deltas, 1e3*monoSec/deltas, monoSec/shardSec)
}
