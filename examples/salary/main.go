// Salary ranges: answer 1-D range queries over binned salaries under line
// and distance-threshold policies, reproducing in miniature the paper's
// 1D-Range experiments (Figures 8c/8d): the Blowfish mechanisms beat the
// best differentially private baselines by orders of magnitude, and their
// error does not grow with the domain size.
//
// Each policy is opened as an Engine once per domain size; the prepared
// Plans then serve the whole query workload from the compiled strategy.
//
//	go run ./examples/salary
package main

import (
	"fmt"

	blowfish "github.com/privacylab/blowfish"
)

func main() {
	const eps = 0.1
	src := blowfish.NewSource(11)

	for _, k := range []int{256, 1024} {
		// Heavy-tailed salary histogram.
		x := make([]float64, k)
		for i := range x {
			x[i] = float64(2000 / (i + 2))
		}
		queries := blowfish.RandomRanges1D(k, 2000, src.Split())
		truth := queries.Answers(x)

		// Line policy: adjacent bins protected.
		got := mustAnswer(blowfish.LinePolicy(k), queries, x, eps, src.Split())

		// Distance-threshold policy: bins within 4 steps protected, answered
		// via the stretch-3 spanner H^4_k at eps/3 (Lemma 4.5).
		theta, err := blowfish.DistanceThresholdPolicy([]int{k}, 4)
		if err != nil {
			panic(err)
		}
		gotTheta := mustAnswer(theta, queries, x, eps, src.Split())

		// Standard unbounded DP comparison: same queries, Laplace on the
		// histogram (sensitivity 1) — the simplest ε-DP baseline.
		dp := mustAnswer(blowfish.UnboundedPolicy(k), queries, x, eps, src.Split())

		fmt.Printf("k=%4d   per-query MSE:  G^1=%10.1f   G^4=%10.1f   unbounded DP=%12.1f\n",
			k, mse(got, truth), mse(gotTheta, truth), mse(dp, truth))
	}
	fmt.Println("\nNote the Blowfish errors are flat in k while the DP error grows:")
	fmt.Println("the transformed workload is (nearly) the identity regardless of k")
	fmt.Println("(Theorem 5.2 / Figure 8d of the paper).")
}

// mustAnswer opens an Engine for the policy, prepares the workload once and
// releases one answer — the Engine/Plan shape of the legacy one-shot
// Answer. Long-lived services keep the Engine and Plan around instead.
func mustAnswer(p *blowfish.Policy, w *blowfish.Workload, x []float64, eps float64, src *blowfish.Source) []float64 {
	engine, err := blowfish.Open(p, blowfish.EngineOptions{})
	if err != nil {
		panic(err)
	}
	plan, err := engine.Prepare(w, blowfish.Options{})
	if err != nil {
		panic(err)
	}
	out, err := plan.Answer(x, eps, src)
	if err != nil {
		panic(err)
	}
	return out
}

func mse(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s / float64(len(a))
}
