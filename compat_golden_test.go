package blowfish

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// The golden compatibility suite pins the exact bit patterns the legacy
// Answer entry point produces for every estimator/policy pair the evaluation
// exercises. The file testdata/answer_golden.json was generated before the
// Engine/Plan refactor; Answer must keep reproducing it bit for bit, which
// proves the compiled hot path performs the same float operations in the
// same order as the original per-call implementation.
//
// Regenerate (only for an intentional, reviewed behavior change):
//
//	go test -run TestAnswerGoldenCompat -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/answer_golden.json")

const goldenPath = "testdata/answer_golden.json"

// goldenCase is one (policy, workload, estimator) combination answered at a
// fixed seed. Workload construction gets its own deterministic source so
// random query sets are stable.
type goldenCase struct {
	name     string
	policy   func() (*Policy, error)
	workload func(src *Source) *Workload
	opts     Options
}

func goldenCases() []goldenCase {
	cyclePolicy := func() (*Policy, error) {
		p := LinePolicy(10)
		p.G.MustAddEdge(9, 0)
		p.Name = "cycle"
		p.Theta = 0
		p.Dims = nil
		return p, nil
	}
	line32 := func() (*Policy, error) { return LinePolicy(32), nil }
	hist32 := func(*Source) *Workload { return Histogram(32) }
	ranges32 := func(*Source) *Workload { return AllRanges1D(32) }
	return []goldenCase{
		{"line/hist/laplace", line32, hist32, Options{Estimator: EstimatorLaplace}},
		{"line/hist/consistent", line32, hist32, Options{Estimator: EstimatorConsistent}},
		{"line/hist/dawa", line32, hist32, Options{Estimator: EstimatorDAWA}},
		{"line/hist/dawacons", line32, hist32, Options{Estimator: EstimatorDAWAConsistent}},
		{"line/hist/gaussian", line32, hist32, Options{Estimator: EstimatorGaussian, Delta: 1e-6}},
		{"line/hist/geometric", line32, hist32, Options{Estimator: EstimatorGeometric}},
		{"line/ranges/laplace", line32, ranges32, Options{}},
		{"line/ranges/consistent", line32, ranges32, Options{Estimator: EstimatorConsistent}},
		{"unbounded/ranges/laplace", func() (*Policy, error) { return UnboundedPolicy(12), nil },
			func(*Source) *Workload { return AllRanges1D(12) }, Options{}},
		{"bounded/hist/laplace", func() (*Policy, error) { return BoundedPolicy(12), nil },
			func(*Source) *Workload { return Histogram(12) }, Options{}},
		{"thetaline/ranges/laplace", func() (*Policy, error) { return DistanceThresholdPolicy([]int{48}, 3) },
			func(*Source) *Workload { return AllRanges1D(48) }, Options{}},
		{"thetaline/ranges/dawa", func() (*Policy, error) { return DistanceThresholdPolicy([]int{48}, 3) },
			func(*Source) *Workload { return AllRanges1D(48) }, Options{Estimator: EstimatorDAWA}},
		{"grid/ranges", func() (*Policy, error) { return GridPolicy(6), nil },
			func(src *Source) *Workload { return RandomRangesKd([]int{6, 6}, 40, src) }, Options{}},
		{"thetagrid/ranges", func() (*Policy, error) { return DistanceThresholdPolicy([]int{8, 8}, 3) },
			func(src *Source) *Workload { return RandomRangesKd([]int{8, 8}, 40, src) }, Options{}},
		{"gridkd/ranges", func() (*Policy, error) { return DistanceThresholdPolicy([]int{4, 4, 4}, 1) },
			func(src *Source) *Workload { return RandomRangesKd([]int{4, 4, 4}, 40, src) }, Options{}},
		{"bfs/ranges/laplace", cyclePolicy,
			func(*Source) *Workload { return AllRanges1D(10) }, Options{}},
	}
}

// goldenDatabase is the deterministic histogram every case answers on.
func goldenDatabase(k int) []float64 {
	x := make([]float64, k)
	for i := range x {
		x[i] = float64((i*13)%23 + 1)
	}
	return x
}

// runGoldenCase produces the legacy Answer output for one case as exact
// float64 bit patterns.
func runGoldenCase(t *testing.T, idx int, gc goldenCase) []string {
	t.Helper()
	p, err := gc.policy()
	if err != nil {
		t.Fatalf("%s: policy: %v", gc.name, err)
	}
	w := gc.workload(NewSource(int64(2000 + idx)))
	got, err := Answer(w, goldenDatabase(p.K), p, 0.7, NewSource(int64(1000+idx)), gc.opts)
	if err != nil {
		t.Fatalf("%s: answer: %v", gc.name, err)
	}
	bits := make([]string, len(got))
	for i, v := range got {
		bits[i] = strconv.FormatUint(math.Float64bits(v), 16)
	}
	return bits
}

func TestAnswerGoldenCompat(t *testing.T) {
	results := map[string][]string{}
	for i, gc := range goldenCases() {
		results[gc.name] = runGoldenCase(t, i, gc)
	}
	if *updateGolden {
		raw, err := json.MarshalIndent(results, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cases)", goldenPath, len(results))
		return
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (generate with -update-golden): %v", err)
	}
	var want map[string][]string
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(results) {
		t.Fatalf("golden has %d cases, suite has %d", len(want), len(results))
	}
	for name, bits := range results {
		wb, ok := want[name]
		if !ok {
			t.Errorf("case %s missing from golden", name)
			continue
		}
		if len(wb) != len(bits) {
			t.Errorf("%s: got %d answers, golden has %d", name, len(bits), len(wb))
			continue
		}
		for i := range bits {
			if bits[i] != wb[i] {
				t.Errorf("%s: answer %d = %s, golden %s (not bitwise identical)", name, i, bits[i], wb[i])
				break
			}
		}
	}
}
