#!/bin/sh
# Kill -9 / restart smoke for the durable daemon: budget ledgers, stream
# state, and the idempotency table must survive both a hard kill (WAL
# replay) and a graceful SIGTERM (final snapshot, nothing to replay). All
# traffic goes through blowfishctl — the real client with retries and
# idempotency keys — not bare curl, so the smoke exercises the same retry
# discipline production callers get. Run via `make crash`; CI runs it on
# every matrix leg.
set -eu

PORT="${PORT:-18091}"
BASE="http://127.0.0.1:$PORT"
DATADIR="$(mktemp -d)"
BINDIR="$(mktemp -d)"
BD="$BINDIR/blowfishd"
CTL="$BINDIR/blowfishctl"
BD_PID=""

cleanup() {
    [ -n "$BD_PID" ] && kill -9 "$BD_PID" 2>/dev/null || true
    rm -rf "$DATADIR" "$BINDIR"
}
trap cleanup EXIT

fail() {
    echo "crash_smoke: FAIL: $1" >&2
    exit 1
}

start_daemon() {
    "$BD" -addr "127.0.0.1:$PORT" -seed 1 -data-dir "$DATADIR" -snapshot-interval -1s &
    BD_PID=$!
}

ctl() {
    "$CTL" -base "$BASE" "$@"
}

go build -o "$BD" ./cmd/blowfishd
go build -o "$CTL" ./cmd/blowfishctl

# --- first life: build state ---
start_daemon
ctl wait-ready || fail "daemon never became ready"

ubody='{"tenant":"carol","policy":{"kind":"line","k":4},"workload":{"kind":"histogram"},"base":[1,2,3,4],"delta":{"cells":[2],"values":[10]}}'
echo "$ubody" | ctl update - | grep -q '"created":true' || fail "stream create"
abody='{"tenant":"carol","policy":{"kind":"line","k":4},"workload":{"kind":"histogram"},"epsilon":0.3,"x":[0,0,0,0]}'
# Pin the idempotency key so the replay across the kill below can be
# compared byte-for-byte against this original response.
FIRST="$(ctl -key smoke-pinned answer "$abody")" || fail "charged answer"
ctl budget carol | grep -q '"spent_epsilon":0.3' || fail "spend before kill"

# --- hard kill: no snapshot, recovery must come from the WAL ---
kill -9 "$BD_PID"
wait "$BD_PID" 2>/dev/null || true
BD_PID=""

start_daemon
ctl wait-ready || fail "daemon never became ready after kill -9"
ctl budget carol | grep -q '"spent_epsilon":0.3' \
    || fail "budget lost across kill -9"
sbody='{"tenant":"carol","policy":{"kind":"line","k":4},"workload":{"kind":"histogram"},"epsilon":0,"stream":true}'
ctl answer "$sbody" | grep -q '"answers":\[1,2,13,4\]' \
    || fail "stream state lost across kill -9"
# Replaying the pinned key must return the original bytes — same noise,
# zero extra spend — even though the daemon restarted in between.
REPLAY="$(ctl -key smoke-pinned answer "$abody")" || fail "idempotent replay request"
[ "$REPLAY" = "$FIRST" ] || fail "idempotent replay not byte-identical across kill -9"
ctl budget carol | grep -q '"spent_epsilon":0.3' \
    || fail "idempotent replay spent budget"

# --- graceful SIGTERM: final snapshot retires the WAL ---
ubody2='{"tenant":"carol","policy":{"kind":"line","k":4},"workload":{"kind":"histogram"},"delta":{"cells":[0],"values":[1]}}'
ctl update "$ubody2" > /dev/null || fail "post-recovery delta"
kill -TERM "$BD_PID"
wait "$BD_PID" 2>/dev/null || true
BD_PID=""

start_daemon
ctl wait-ready || fail "daemon never became ready after SIGTERM"
ctl stats | grep -q '"wal_replayed":0' \
    || fail "clean shutdown should leave nothing to replay"
ctl budget carol | grep -q '"spent_epsilon":0.3' \
    || fail "budget lost across graceful restart"
ctl answer "$sbody" | grep -q '"answers":\[2,2,13,4\]' \
    || fail "stream state lost across graceful restart"
# The dedupe table rode the snapshot: the pinned key still replays.
REPLAY2="$(ctl -key smoke-pinned answer "$abody")" || fail "replay after snapshot restart"
[ "$REPLAY2" = "$FIRST" ] || fail "idempotent replay not byte-identical across snapshot restart"

kill -TERM "$BD_PID"
wait "$BD_PID" 2>/dev/null || true
BD_PID=""

echo "crash_smoke: OK (kill -9 replayed the WAL, idempotent replays stayed byte-identical, SIGTERM snapshot restarted clean)"
