#!/bin/sh
# Kill -9 / restart smoke for the durable daemon: budget ledgers and stream
# state must survive both a hard kill (WAL replay) and a graceful SIGTERM
# (final snapshot, nothing to replay). Run via `make crash`; CI runs it on
# every matrix leg.
set -eu

PORT="${PORT:-18091}"
BASE="http://127.0.0.1:$PORT"
DATADIR="$(mktemp -d)"
BIN="$(mktemp -d)/blowfishd"
BD_PID=""

cleanup() {
    [ -n "$BD_PID" ] && kill -9 "$BD_PID" 2>/dev/null || true
    rm -rf "$DATADIR" "$(dirname "$BIN")"
}
trap cleanup EXIT

fail() {
    echo "crash_smoke: FAIL: $1" >&2
    exit 1
}

start_daemon() {
    "$BIN" -addr "127.0.0.1:$PORT" -seed 1 -data-dir "$DATADIR" -snapshot-interval -1s &
    BD_PID=$!
}

wait_ready() {
    i=0
    while [ $i -lt 100 ]; do
        if curl -sf "$BASE/readyz" > /dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
        i=$((i + 1))
    done
    fail "daemon never became ready"
}

go build -o "$BIN" ./cmd/blowfishd

# --- first life: build state ---
start_daemon
wait_ready

ubody='{"tenant":"carol","policy":{"kind":"line","k":4},"workload":{"kind":"histogram"},"base":[1,2,3,4],"delta":{"cells":[2],"values":[10]}}'
curl -sf -X POST "$BASE/v1/update" -d "$ubody" | grep -q '"created":true' || fail "stream create"
abody='{"tenant":"carol","policy":{"kind":"line","k":4},"workload":{"kind":"histogram"},"epsilon":0.3,"x":[0,0,0,0]}'
curl -sf -X POST "$BASE/v1/answer" -d "$abody" > /dev/null || fail "charged answer"
curl -sf "$BASE/v1/budget?tenant=carol" | grep -q '"spent_epsilon":0.3' || fail "spend before kill"

# --- hard kill: no snapshot, recovery must come from the WAL ---
kill -9 "$BD_PID"
wait "$BD_PID" 2>/dev/null || true
BD_PID=""

start_daemon
wait_ready
curl -sf "$BASE/v1/budget?tenant=carol" | grep -q '"spent_epsilon":0.3' \
    || fail "budget lost across kill -9"
sbody='{"tenant":"carol","policy":{"kind":"line","k":4},"workload":{"kind":"histogram"},"epsilon":0,"stream":true}'
curl -sf -X POST "$BASE/v1/answer" -d "$sbody" | grep -q '"answers":\[1,2,13,4\]' \
    || fail "stream state lost across kill -9"

# --- graceful SIGTERM: final snapshot retires the WAL ---
ubody2='{"tenant":"carol","policy":{"kind":"line","k":4},"workload":{"kind":"histogram"},"delta":{"cells":[0],"values":[1]}}'
curl -sf -X POST "$BASE/v1/update" -d "$ubody2" > /dev/null || fail "post-recovery delta"
kill -TERM "$BD_PID"
wait "$BD_PID" 2>/dev/null || true
BD_PID=""

start_daemon
wait_ready
curl -sf "$BASE/v1/stats" | grep -q '"wal_replayed":0' \
    || fail "clean shutdown should leave nothing to replay"
curl -sf "$BASE/v1/budget?tenant=carol" | grep -q '"spent_epsilon":0.3' \
    || fail "budget lost across graceful restart"
curl -sf -X POST "$BASE/v1/answer" -d "$sbody" | grep -q '"answers":\[2,2,13,4\]' \
    || fail "stream state lost across graceful restart"

kill -TERM "$BD_PID"
wait "$BD_PID" 2>/dev/null || true
BD_PID=""

echo "crash_smoke: OK (kill -9 replayed the WAL, SIGTERM snapshot restarted clean)"
